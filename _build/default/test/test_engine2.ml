(* Second engine suite: locking-read (SELECT FOR UPDATE) semantics, LIMIT
   scans, page-granularity behaviour (the Berkeley DB configuration),
   read-committed, and lifecycle edge cases. *)

open Core
open Testutil

let ssi = Types.Serializable

let si = Types.Snapshot

let s2pl = Types.S2pl

let accounts = ("acct", [ ("x", "50"); ("y", "50") ])

(* {1 read_for_update} *)

let test_fu_reads_current_value () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             Alcotest.(check (option string)) "fu read" (Some "50")
               (Txn.read_for_update t "acct" "x");
             Txn.write t "acct" "x" "51";
             Alcotest.(check (option string)) "fu sees own write" (Some "51")
               (Txn.read_for_update t "acct" "x"))));
  Sim.run ~until:1e6 env.sim

let test_fu_blocks_concurrent_writer () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let t2_done = ref (-1.0) in
  let _ =
    script env ~at:0.0 ~gap:0.5 ~isolation:ssi
      [ (fun t -> ignore (Txn.read_for_update t "acct" "x")); (fun _ -> ()) ]
  in
  Sim.spawn env.sim (fun () ->
      Sim.delay env.sim 0.1;
      ignore (Db.run_retry env.db ssi (fun t -> Txn.write t "acct" "x" "9"));
      t2_done := Sim.now env.sim);
  Sim.run ~until:1e6 env.sim;
  Alcotest.(check bool) "writer waited for FU holder" true (!t2_done > 0.9)

let test_fu_first_statement_never_fcw_aborts () =
  (* §4.5: two increment transactions whose FIRST operation is the locking
     read serialize via the lock and both commit, even under SI. *)
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let incr t =
    let v = int_of_string (Txn.read_for_update_exn t "acct" "x") in
    Sim.delay env.sim 0.02;
    Txn.write t "acct" "x" (string_of_int (v + 1))
  in
  let r1 = script env ~at:0.0 ~isolation:si [ incr ] in
  let r2 = script env ~at:0.001 ~isolation:si [ incr ] in
  run_procs env [];
  check_outcome "first" Committed r1;
  check_outcome "second commits too (no FCW)" Committed r2;
  Alcotest.(check (option int)) "both increments applied" (Some 52) (peek_int env "acct" "x")

let test_fu_no_upgrade_deadlock_under_s2pl () =
  (* Two read-modify-writes on the same key via FU: the second waits for the
     first; no deadlock, both commit. *)
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let incr t =
    let v = int_of_string (Txn.read_for_update_exn t "acct" "x") in
    Sim.delay env.sim 0.02;
    Txn.write t "acct" "x" (string_of_int (v + 1))
  in
  let r1 = script env ~at:0.0 ~isolation:s2pl [ incr ] in
  let r2 = script env ~at:0.001 ~isolation:s2pl [ incr ] in
  run_procs env [];
  check_outcome "first" Committed r1;
  check_outcome "second" Committed r2;
  Alcotest.(check int) "no deadlocks" 0 (Db.stats env.db).Internal.aborts_deadlock

let test_plain_read_then_write_upgrade_deadlocks_under_s2pl () =
  (* The same pattern with plain reads produces the classic S->X upgrade
     deadlock the paper's S2PL suffers from (Fig 6.1). *)
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let incr t =
    let v = int_of_string (Txn.read_exn t "acct" "x") in
    Sim.delay env.sim 0.02;
    Txn.write t "acct" "x" (string_of_int (v + 1))
  in
  let r1 = script env ~at:0.0 ~isolation:s2pl [ incr ] in
  let r2 = script env ~at:0.001 ~isolation:s2pl [ incr ] in
  run_procs env [];
  let outcomes = List.sort compare [ outcome_to_string !r1; outcome_to_string !r2 ] in
  Alcotest.(check (list string)) "one upgrade deadlock"
    [ "aborted:deadlock"; "committed" ] outcomes

let test_fu_vulnerable_edge_still_detected () =
  (* FU must not hide genuine rw conflicts on *other* rows: the write-skew
     pair still aborts when the cross-read is a plain read. *)
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  let skew my other t =
    let mine = int_of_string (Txn.read_for_update_exn t "acct" my) in
    let theirs = int_of_string (Txn.read_exn t "acct" other) in
    if mine + theirs > 70 then Txn.write t "acct" my (string_of_int (mine - 70))
  in
  let r1 = script env ~at:0.0 ~gap:0.02 ~isolation:ssi [ skew "x" "y" ] in
  let r2 = script env ~at:0.005 ~gap:0.02 ~isolation:ssi [ skew "y" "x" ] in
  run_procs env [];
  let outcomes = List.sort compare [ outcome_to_string !r1; outcome_to_string !r2 ] in
  Alcotest.(check (list string)) "skew caught" [ "aborted:unsafe"; "committed" ] outcomes

(* {1 LIMIT scans} *)

let many_rows = ("t", List.init 20 (fun i -> (Printf.sprintf "k%02d" i, string_of_int i)))

let test_scan_limit_results () =
  let env = make_env ~tables:[ "t" ] ~rows:[ many_rows ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             let rows = Txn.scan ~limit:3 t "t" in
             Alcotest.(check (list string)) "first three keys" [ "k00"; "k01"; "k02" ]
               (List.map fst rows);
             let rows = Txn.scan ~lo:"k05" ~limit:2 t "t" in
             Alcotest.(check (list string)) "offset limit" [ "k05"; "k06" ] (List.map fst rows);
             let rows = Txn.scan ~lo:"zz" ~limit:5 t "t" in
             Alcotest.(check int) "empty range" 0 (List.length rows))));
  Sim.run ~until:1e6 env.sim

let test_scan_limit_skips_tombstones () =
  let env = make_env ~tables:[ "t" ] ~rows:[ many_rows ] () in
  Sim.spawn env.sim (fun () ->
      ignore (atomically env ssi (fun t -> ignore (Txn.delete t "t" "k00")));
      ignore
        (atomically env ssi (fun t ->
             let rows = Txn.scan ~limit:1 t "t" in
             Alcotest.(check (list string)) "tombstone skipped" [ "k01" ] (List.map fst rows))));
  Sim.run ~until:1e6 env.sim

let test_scan_limit_locks_only_prefix () =
  (* A LIMIT-1 scan must not conflict with inserts far beyond the row it
     examined. *)
  let env = make_env ~tables:[ "t" ] ~rows:[ many_rows ] () in
  let r1 =
    script env ~at:0.0 ~gap:0.05 ~isolation:ssi
      [
        (fun t ->
          let rows = Txn.scan ~limit:1 t "t" in
          ignore rows);
        (fun t -> Txn.write t "t" "k00" "touched");
      ]
  in
  let r2 =
    script env ~at:0.01 ~gap:0.01 ~isolation:ssi
      [ (fun t -> Txn.insert t "t" "k99" "new") ]
  in
  run_procs env [];
  check_outcome "limited scanner commits" Committed r1;
  check_outcome "far insert commits" Committed r2


let test_s2pl_gap_lock_blocks_insert () =
  (* S2PL phantom protection: a scanner's next-key S locks block a
     concurrent insert into the scanned range until the scanner commits. *)
  let env = make_env ~tables:[ "t" ] ~rows:[ many_rows ] () in
  let insert_done = ref (-1.0) in
  let _ =
    script env ~at:0.0 ~gap:0.5 ~isolation:s2pl
      [ (fun t -> ignore (Txn.scan ~lo:"k05" ~hi:"k10" t "t")); (fun _ -> ()) ]
  in
  Sim.spawn env.sim (fun () ->
      Sim.delay env.sim 0.1;
      ignore (Db.run_retry env.db s2pl (fun t -> Txn.insert t "t" "k05a" "phantom"));
      insert_done := Sim.now env.sim);
  Sim.run ~until:1e6 env.sim;
  Alcotest.(check bool) "insert waited for scanner" true (!insert_done > 0.9)

let test_s2pl_insert_outside_range_not_blocked () =
  let env = make_env ~tables:[ "t" ] ~rows:[ many_rows ] () in
  let insert_done = ref (-1.0) in
  let _ =
    script env ~at:0.0 ~gap:0.5 ~isolation:s2pl
      [ (fun t -> ignore (Txn.scan ~lo:"k05" ~hi:"k10" t "t")); (fun _ -> ()) ]
  in
  Sim.spawn env.sim (fun () ->
      Sim.delay env.sim 0.1;
      ignore (Db.run_retry env.db s2pl (fun t -> Txn.insert t "t" "k15a" "outside"));
      insert_done := Sim.now env.sim);
  Sim.run ~until:1e6 env.sim;
  Alcotest.(check bool) "insert outside range proceeded" true
    (!insert_done > 0.0 && !insert_done < 0.3)

let test_rc_scan_sees_latest () =
  let env = make_env ~tables:[ "t" ] ~rows:[ many_rows ] () in
  Sim.spawn env.sim (fun () ->
      let reader = Db.begin_txn env.db Types.Read_committed in
      let before = List.length (Txn.scan reader "t") in
      ignore (atomically env ssi (fun t -> Txn.insert t "t" "zz" "new"));
      let after = List.length (Txn.scan reader "t") in
      Txn.commit reader;
      Alcotest.(check int) "RC sees rows committed mid-transaction" (before + 1) after);
  Sim.run ~until:1e6 env.sim

let test_ro_txn_rejects_writes () =
  let env = make_env ~tables:[ "t" ] ~rows:[ many_rows ] () in
  Sim.spawn env.sim (fun () ->
      match
        Db.run ~read_only:true env.db ssi (fun t ->
            ignore (Txn.read t "t" "k00");
            Txn.write t "t" "k00" "nope")
      with
      | Error (Types.Internal_error _) -> ()
      | _ -> Alcotest.fail "expected rejection of write in READ ONLY txn");
  Sim.run ~until:1e6 env.sim;
  Alcotest.(check (option string)) "value untouched" (Some "0") (peek env "t" "k00")

(* {1 Page granularity (Berkeley DB profile)} *)

let page_config () =
  {
    (Config.bdb ()) with
    Config.record_history = true;
    btree_fanout = 4 (* tiny pages to exercise splits *);
  }

let test_page_mode_write_skew_prevented () =
  let env = make_env ~config:{ (page_config ()) with Config.ssi = Config.Basic }
      ~tables:[ "acct" ] ~rows:[ accounts ] ()
  in
  let withdraw from other t =
    let a = int_of_string (Txn.read_exn t "acct" from) in
    let b = int_of_string (Txn.read_exn t "acct" other) in
    if a + b > 70 then Txn.write t "acct" from (string_of_int (a - 70))
  in
  let r1 = script env ~at:0.0 ~gap:0.02 ~isolation:ssi [ withdraw "x" "y" ] in
  let r2 = script env ~at:0.005 ~gap:0.02 ~isolation:ssi [ withdraw "y" "x" ] in
  run_procs env [];
  let outcomes = List.sort compare [ outcome_to_string !r1; outcome_to_string !r2 ] in
  Alcotest.(check bool) "at least one aborts at page granularity" true
    (outcomes <> [ "committed"; "committed" ])

let test_page_mode_fcw_is_page_level () =
  (* Two SI transactions updating different rows on the same page: the
     second aborts under page-level first-committer-wins (the Berkeley DB
     behaviour of §6.1.5). *)
  let rows = ("t", List.init 3 (fun i -> (Printf.sprintf "k%d" i, "0"))) in
  let env = make_env ~config:(page_config ()) ~tables:[ "t" ] ~rows:[ rows ] () in
  let r1 =
    script env ~at:0.0 ~gap:0.04 ~isolation:si
      [ (fun t -> ignore (Txn.read_exn t "t" "k0")); (fun t -> Txn.write t "t" "k0" "a") ]
  in
  let r2 =
    script env ~at:0.01 ~gap:0.04 ~isolation:si
      [ (fun t -> ignore (Txn.read_exn t "t" "k1")); (fun t -> Txn.write t "t" "k1" "b") ]
  in
  run_procs env [];
  check_outcome "first commits" Committed r1;
  check_outcome "second hits page-level FCW" (Aborted Types.Update_conflict) r2

let test_page_mode_split_conflicts_with_readers () =
  (* §6.1.5: an insert that splits pages (here including the root) registers
     conflicts with concurrent SSI readers via page stamps. *)
  let rows = ("t", List.init 16 (fun i -> (Printf.sprintf "k%02d" i, "0"))) in
  let env = make_env ~config:(page_config ()) ~tables:[ "t" ] ~rows:[ rows ] () in
  (* Reader: reads twice around the splitter's commit; with out+in edges it
     may abort — what we check is that the rw edge got recorded at all. *)
  let seen_conflict = ref false in
  let _ =
    script env ~at:0.0 ~gap:0.05 ~isolation:ssi
      [
        (fun t -> ignore (Txn.read_exn t "t" "k00"));
        (fun t ->
          ignore (Txn.read_exn t "t" "k15");
          seen_conflict := (t : Internal.txn).Internal.out_conflict <> Internal.No_conflict);
      ]
  in
  let _ =
    script env ~at:0.01 ~gap:0.005 ~isolation:ssi
      (List.init 8 (fun i t -> Txn.insert t "t" (Printf.sprintf "k%02d_x" i) "new"))
  in
  run_procs env [];
  Alcotest.(check bool) "reader observed rw edge from structural change" true !seen_conflict

let test_page_mode_random_ssi_serializable () =
  (* Whole-engine property at page granularity: SSI histories stay
     serializable even with page-level (coarse) conflict detection. *)
  for seed = 1 to 8 do
    let env =
      make_env ~config:(page_config ()) ~tables:[ "t" ]
        ~rows:[ ("t", List.init 12 (fun i -> (Printf.sprintf "k%02d" i, "100"))) ]
        ()
    in
    for client = 1 to 4 do
      Sim.spawn env.sim (fun () ->
          let st = Random.State.make [| seed; client |] in
          for _ = 1 to 10 do
            ignore
              (Db.run env.db ssi (fun t ->
                   let k1 = Printf.sprintf "k%02d" (Random.State.int st 12) in
                   let k2 = Printf.sprintf "k%02d" (Random.State.int st 12) in
                   let v1 = int_of_string (Option.value ~default:"0" (Txn.read t "t" k1)) in
                   Sim.delay env.sim (Random.State.float st 0.001);
                   let v2 = int_of_string (Option.value ~default:"0" (Txn.read t "t" k2)) in
                   if v1 + v2 > 0 then Txn.write t "t" k1 (string_of_int (v1 - 5))));
            Sim.delay env.sim (Random.State.float st 0.001)
          done)
    done;
    Sim.run ~until:1e6 env.sim;
    if not (Mvsg.is_serializable (Db.history env.db)) then
      Alcotest.failf "page-mode SSI seed %d not serializable" seed
  done


(* {1 Victim selection (3.7.2)} *)

(* The Example 3 shape in precise mode: when the pivot's write finds Tin's
   SIREAD (with Tout already committed), the dangerous structure appears
   with both endpoints (Tin, Tpivot) still active. Prefer_pivot aborts the
   pivot; Prefer_younger aborts Tin (it began later), and the pivot can
   commit because its in-edge now points at an aborted transaction. *)
let victim_scenario policy =
  let config = { (Config.test ()) with Config.victim = policy } in
  let env =
    make_env ~config ~tables:[ "t" ] ~rows:[ ("t", [ ("x", "0"); ("y", "0"); ("z", "0") ]) ] ()
  in
  let r_pivot =
    script env ~at:0.0 ~gap:0.1 ~isolation:Types.Serializable
      [ (fun t -> ignore (Txn.read_exn t "t" "y")); (fun t -> Txn.write t "t" "x" "1") ]
  in
  let r_out =
    script env ~at:0.02 ~gap:0.01 ~isolation:Types.Serializable
      [ (fun t -> Txn.write t "t" "y" "2"); (fun t -> Txn.write t "t" "z" "2") ]
  in
  (* Tin: long-running reader overlapping the pivot's write at ~0.10. *)
  let r_in =
    script env ~at:0.06 ~gap:0.08 ~isolation:Types.Serializable
      [ (fun t -> ignore (Txn.read_exn t "t" "x")); (fun t -> ignore (Txn.read_exn t "t" "z")) ]
  in
  run_procs env [];
  (!r_pivot, !r_out, !r_in)

let test_victim_prefer_pivot () =
  let r_pivot, r_out, r_in = victim_scenario Config.Prefer_pivot in
  Alcotest.check outcome_testable "Tout commits" Committed r_out;
  Alcotest.check outcome_testable "pivot aborts" (Aborted Types.Unsafe) r_pivot;
  Alcotest.check outcome_testable "Tin commits" Committed r_in

let test_victim_prefer_younger () =
  let r_pivot, r_out, r_in = victim_scenario Config.Prefer_younger in
  Alcotest.check outcome_testable "Tout commits" Committed r_out;
  Alcotest.check outcome_testable "younger Tin aborts" (Aborted Types.Unsafe) r_in;
  Alcotest.check outcome_testable "pivot survives" Committed r_pivot

let test_victim_younger_still_serializable () =
  (* Whole-engine property: the alternative policy must not lose safety. *)
  for seed = 1 to 6 do
    let config = { (Config.test ()) with Config.victim = Config.Prefer_younger } in
    let env =
      make_env ~config ~tables:[ "t" ]
        ~rows:[ ("t", List.init 4 (fun i -> (Printf.sprintf "k%d" i, "100"))) ]
        ()
    in
    for client = 1 to 4 do
      Sim.spawn env.sim (fun () ->
          let st = Random.State.make [| seed; client |] in
          for _ = 1 to 10 do
            ignore
              (Db.run env.db Types.Serializable (fun t ->
                   let k1 = Printf.sprintf "k%d" (Random.State.int st 4) in
                   let k2 = Printf.sprintf "k%d" (Random.State.int st 4) in
                   let v1 = int_of_string (Option.value ~default:"0" (Txn.read t "t" k1)) in
                   Sim.delay env.sim (Random.State.float st 0.001);
                   let v2 = int_of_string (Option.value ~default:"0" (Txn.read t "t" k2)) in
                   if v1 + v2 > 0 then Txn.write t "t" k1 (string_of_int (v1 - 5))));
            Sim.delay env.sim (Random.State.float st 0.001)
          done)
    done;
    Sim.run ~until:1e6 env.sim;
    if not (Mvsg.is_serializable (Db.history env.db)) then
      Alcotest.failf "prefer-younger seed %d not serializable" seed
  done


(* {1 Read-only snapshot refinement (extension)} *)

(* T_in is read-only and took its snapshot BEFORE T_out committed: the
   dangerous structure cannot close a cycle, so the refined check commits
   the pivot where the unrefined one aborts it. *)
let ro_refinement_scenario refinement =
  let config = { (Config.test ()) with Config.ro_refinement = refinement } in
  let env =
    make_env ~config ~tables:[ "t" ] ~rows:[ ("t", [ ("x", "0"); ("y", "0") ]) ] ()
  in
  (* b_in r_in(x) ... c_in late; pivot r(y) then w(x); Tout w(y) commits in
     between. Tin is DECLARED read-only so the refinement can apply while it
     is still active. *)
  let r_in = ref Pending in
  Sim.spawn env.sim (fun () ->
      let txn = Db.begin_txn ~read_only:true env.db Types.Serializable in
      match
        ignore (Txn.read_exn txn "t" "x");
        Sim.delay env.sim 0.12;
        Txn.commit txn
      with
      | () -> r_in := Committed
      | exception Types.Abort r -> r_in := Aborted r);
  let r_pivot =
    script env ~at:0.01 ~gap:0.08 ~isolation:Types.Serializable
      [ (fun t -> ignore (Txn.read_exn t "t" "y")); (fun t -> Txn.write t "t" "x" "1") ]
  in
  let r_out =
    script env ~at:0.03 ~gap:0.005 ~isolation:Types.Serializable
      [ (fun t -> Txn.write t "t" "y" "2") ]
  in
  run_procs env [];
  let ok = Mvsg.is_serializable (Db.history env.db) in
  (!r_in, !r_pivot, !r_out, ok)

let test_ro_refinement_avoids_false_positive () =
  let r_in, r_pivot, r_out, ok = ro_refinement_scenario true in
  Alcotest.check outcome_testable "Tin commits" Committed r_in;
  Alcotest.check outcome_testable "Tout commits" Committed r_out;
  Alcotest.check outcome_testable "pivot commits under refinement" Committed r_pivot;
  Alcotest.(check bool) "and the history is serializable" true ok

let test_without_refinement_pivot_aborts () =
  let r_in, r_pivot, r_out, ok = ro_refinement_scenario false in
  Alcotest.check outcome_testable "Tin commits" Committed r_in;
  Alcotest.check outcome_testable "Tout commits" Committed r_out;
  Alcotest.check outcome_testable "unrefined check aborts the pivot (false positive)"
    (Aborted Types.Unsafe) r_pivot;
  Alcotest.(check bool) "still serializable" true ok

let test_ro_refinement_still_blocks_read_only_anomaly () =
  (* Adversarial: Example 3's T_in is read-only, but there T_out commits
     BEFORE T_in's snapshot, so the refined check must still fire. *)
  let config =
    { (Config.test ()) with Config.ro_refinement = true; record_history = true }
  in
  let s = Interleave.sweep ~config ~isolation:Types.Serializable Interleave.read_only_anomaly_spec in
  Alcotest.(check int) "no non-serializable execution" 0 s.Interleave.non_serializable;
  let s_wskew = Interleave.sweep ~config ~isolation:Types.Serializable Interleave.write_skew_spec in
  Alcotest.(check int) "write skew still blocked" 0 s_wskew.Interleave.non_serializable

let test_ro_refinement_random_serializable () =
  for seed = 1 to 6 do
    let config = { (Config.test ()) with Config.ro_refinement = true } in
    let env =
      make_env ~config ~tables:[ "t" ]
        ~rows:[ ("t", List.init 4 (fun i -> (Printf.sprintf "k%d" i, "100"))) ]
        ()
    in
    for client = 1 to 4 do
      Sim.spawn env.sim (fun () ->
          let st = Random.State.make [| seed; client |] in
          for _ = 1 to 10 do
            ignore
              (Db.run env.db Types.Serializable (fun t ->
                   let k1 = Printf.sprintf "k%d" (Random.State.int st 4) in
                   let k2 = Printf.sprintf "k%d" (Random.State.int st 4) in
                   let v1 = int_of_string (Option.value ~default:"0" (Txn.read t "t" k1)) in
                   Sim.delay env.sim (Random.State.float st 0.001);
                   let v2 = int_of_string (Option.value ~default:"0" (Txn.read t "t" k2)) in
                   (* half the transactions are pure readers *)
                   if Random.State.bool st && v1 + v2 > 0 then
                     Txn.write t "t" k1 (string_of_int (v1 - 5))));
            Sim.delay env.sim (Random.State.float st 0.001)
          done)
    done;
    Sim.run ~until:1e6 env.sim;
    if not (Mvsg.is_serializable (Db.history env.db)) then
      Alcotest.failf "ro-refinement seed %d not serializable" seed
  done

(* {1 Read committed and odds and ends} *)

let test_read_committed_no_repeatable_read () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env Types.Read_committed (fun t ->
             Txn.write t "acct" "x" "1" (* RC writes still X-lock *))));
  Sim.run ~until:1e6 env.sim;
  Alcotest.(check (option int)) "rc write committed" (Some 1) (peek_int env "acct" "x")

let test_missing_table_aborts () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  Sim.spawn env.sim (fun () ->
      match Db.run env.db ssi (fun t -> Txn.read t "nope" "x") with
      | Error (Types.Internal_error _) -> ()
      | _ -> Alcotest.fail "expected Internal_error");
  Sim.run ~until:1e6 env.sim

let test_missing_key_read_exn () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  Sim.spawn env.sim (fun () ->
      match Db.run env.db ssi (fun t -> Txn.read_exn t "acct" "nope") with
      | Error (Types.Internal_error _) -> ()
      | _ -> Alcotest.fail "expected Internal_error");
  Sim.run ~until:1e6 env.sim

let test_update_helper () =
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             Txn.update t "acct" "x" (function
               | Some v -> Some (string_of_int (int_of_string v * 2))
               | None -> None))));
  Sim.run ~until:1e6 env.sim;
  Alcotest.(check (option int)) "doubled" (Some 100) (peek_int env "acct" "x")

let test_suspension_for_pure_writer_with_out_conflict () =
  (* §3.7.3 note: with SIREAD upgrade, a transaction whose only retained
     state is an *outgoing* conflict must still be suspended. A pure writer
     whose write created an out edge... writers get in-edges; out-edges come
     from reads. Instead verify the simpler contract: a pure (blind) writer
     with no conflicts is NOT suspended. *)
  let env = make_env ~tables:[ "acct" ] ~rows:[ accounts ] () in
  Sim.spawn env.sim (fun () ->
      let overlapper = Db.begin_txn env.db ssi in
      ignore (Txn.read overlapper "acct" "y");
      ignore (atomically env ssi (fun t -> Txn.write t "acct" "x" "7"));
      Alcotest.(check int) "blind writer not suspended" 0 (Db.suspended_count env.db);
      Txn.commit overlapper);
  Sim.run ~until:1e6 env.sim

let test_insert_after_delete_same_txn () =
  let env = make_env ~tables:[ "t" ] ~rows:[ ("t", [ ("a", "1") ]) ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             Alcotest.(check bool) "deleted" true (Txn.delete t "t" "a");
             Txn.insert t "t" "a" "2";
             Alcotest.(check (option string)) "reinserted visible" (Some "2")
               (Txn.read t "t" "a"))));
  Sim.run ~until:1e6 env.sim;
  Alcotest.(check (option string)) "committed" (Some "2") (peek env "t" "a")

let test_delete_missing_key () =
  let env = make_env ~tables:[ "t" ] () in
  Sim.spawn env.sim (fun () ->
      ignore
        (atomically env ssi (fun t ->
             Alcotest.(check bool) "delete absent returns false" false (Txn.delete t "t" "zz"))));
  Sim.run ~until:1e6 env.sim

let suite =
  [
    ("fu reads current value", `Quick, test_fu_reads_current_value);
    ("fu blocks concurrent writer", `Quick, test_fu_blocks_concurrent_writer);
    ("fu first statement never FCW-aborts (4.5)", `Quick, test_fu_first_statement_never_fcw_aborts);
    ("fu avoids S2PL upgrade deadlock", `Quick, test_fu_no_upgrade_deadlock_under_s2pl);
    ("plain RMW upgrade-deadlocks under S2PL", `Quick,
     test_plain_read_then_write_upgrade_deadlocks_under_s2pl);
    ("fu keeps vulnerable edges detectable", `Quick, test_fu_vulnerable_edge_still_detected);
    ("scan limit results", `Quick, test_scan_limit_results);
    ("scan limit skips tombstones", `Quick, test_scan_limit_skips_tombstones);
    ("scan limit locks only prefix", `Quick, test_scan_limit_locks_only_prefix);
    ("S2PL gap lock blocks insert", `Quick, test_s2pl_gap_lock_blocks_insert);
    ("S2PL insert outside range not blocked", `Quick, test_s2pl_insert_outside_range_not_blocked);
    ("RC scan sees latest", `Quick, test_rc_scan_sees_latest);
    ("read-only txn rejects writes", `Quick, test_ro_txn_rejects_writes);
    ("page mode write skew prevented", `Quick, test_page_mode_write_skew_prevented);
    ("page mode FCW is page-level", `Quick, test_page_mode_fcw_is_page_level);
    ("page splits conflict with readers", `Quick, test_page_mode_split_conflicts_with_readers);
    ("page mode random SSI serializable", `Slow, test_page_mode_random_ssi_serializable);
    ("victim prefer pivot", `Quick, test_victim_prefer_pivot);
    ("victim prefer younger", `Quick, test_victim_prefer_younger);
    ("prefer younger still serializable", `Slow, test_victim_younger_still_serializable);
    ("ro refinement avoids false positive", `Quick, test_ro_refinement_avoids_false_positive);
    ("without refinement pivot aborts", `Quick, test_without_refinement_pivot_aborts);
    ("ro refinement blocks real anomalies", `Quick, test_ro_refinement_still_blocks_read_only_anomaly);
    ("ro refinement random serializable", `Slow, test_ro_refinement_random_serializable);
    ("read committed basics", `Quick, test_read_committed_no_repeatable_read);
    ("missing table aborts", `Quick, test_missing_table_aborts);
    ("missing key read_exn", `Quick, test_missing_key_read_exn);
    ("update helper", `Quick, test_update_helper);
    ("blind writer not suspended", `Quick, test_suspension_for_pure_writer_with_out_conflict);
    ("insert after delete in txn", `Quick, test_insert_after_delete_same_txn);
    ("delete missing key", `Quick, test_delete_missing_key);
  ]

let () = Alcotest.run "engine2" [ ("engine2", suite) ]
