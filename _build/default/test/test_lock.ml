(* Tests for the lock manager: conflict matrix, FIFO queuing, SIREAD
   non-blocking behaviour, upgrades, deadlock detection (immediate and
   periodic), wait cancellation. *)

let with_sim f =
  let sim = Sim.create () in
  f sim;
  Sim.run sim

let test_conflict_matrix () =
  let open Lockmgr in
  Alcotest.(check bool) "S blocks X" true (blocks S X);
  Alcotest.(check bool) "X blocks S" true (blocks X S);
  Alcotest.(check bool) "X blocks X" true (blocks X X);
  Alcotest.(check bool) "S with S" false (blocks S S);
  Alcotest.(check bool) "SIREAD never blocked by X" false (blocks Siread X);
  Alcotest.(check bool) "X never blocked by SIREAD" false (blocks X Siread);
  Alcotest.(check bool) "SIREAD with SIREAD" false (blocks Siread Siread);
  Alcotest.(check bool) "S with SIREAD" false (blocks S Siread)

let test_shared_locks_coexist () =
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      let granted = ref 0 in
      for i = 1 to 3 do
        Sim.spawn sim (fun () ->
            Lockmgr.acquire lm ~owner:i ~mode:Lockmgr.S "a";
            incr granted)
      done;
      Sim.spawn sim (fun () ->
          Sim.delay sim 1.0;
          Alcotest.(check int) "all S granted" 3 !granted;
          Alcotest.(check int) "table size" 3 (Lockmgr.lock_table_size lm)))

let test_x_blocks_until_release () =
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      let t2_got_it = ref (-1.0) in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          Sim.delay sim 5.0;
          Lockmgr.release_all lm 1);
      Sim.spawn sim (fun () ->
          Sim.delay sim 1.0;
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "a";
          t2_got_it := Sim.now sim);
      Sim.schedule sim ~after:10.0 (fun () ->
          Alcotest.(check (float 1e-9)) "granted at release" 5.0 !t2_got_it))

let test_siread_never_blocks () =
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          (* SIREAD grants instantly although X is held. *)
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.Siread "a";
          Alcotest.(check (float 0.0)) "no time passed" 0.0 (Sim.now sim);
          let holders = List.sort compare (Lockmgr.holders lm "a") in
          Alcotest.(check (list (pair int string)))
            "both recorded"
            [ (1, "X"); (2, "SIREAD") ]
            (List.map (fun (o, m) -> (o, Lockmgr.mode_to_string m)) holders)))

let test_x_granted_over_siread () =
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.Siread "a";
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "a";
          Alcotest.(check (float 0.0)) "X not delayed by SIREAD" 0.0 (Sim.now sim)))

let test_fifo_no_starvation () =
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      let order = ref [] in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          Sim.delay sim 1.0;
          Lockmgr.release_all lm 1);
      (* Writer queues at t=0.1; readers at t=0.2 must not jump it. *)
      Sim.spawn sim (fun () ->
          Sim.delay sim 0.1;
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "a";
          order := 2 :: !order;
          Sim.delay sim 1.0;
          Lockmgr.release_all lm 2);
      for i = 3 to 4 do
        Sim.spawn sim (fun () ->
            Sim.delay sim 0.2;
            Lockmgr.acquire lm ~owner:i ~mode:Lockmgr.S "a";
            order := i :: !order;
            Lockmgr.release_all lm i)
      done;
      Sim.schedule sim ~after:10.0 (fun () ->
          Alcotest.(check (list int)) "writer first, readers after" [ 2; 3; 4 ] (List.rev !order)))

let test_reentrant () =
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.S "a";
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.S "a";
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a" (* self-upgrade, no block *);
          Alcotest.(check (float 0.0)) "no blocking on own locks" 0.0 (Sim.now sim);
          let modes = List.sort compare (Lockmgr.holds_of lm ~owner:1 "a") in
          Alcotest.(check int) "holds two modes" 2 (List.length modes)))

let test_upgrade_waits_for_other_s () =
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      let upgraded = ref (-1.0) in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.S "a";
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.S "a" |> ignore;
          ());
      Sim.spawn sim (fun () ->
          Sim.delay sim 0.1;
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          upgraded := Sim.now sim);
      Sim.spawn sim (fun () ->
          Sim.delay sim 2.0;
          Lockmgr.release_all lm 2);
      Sim.schedule sim ~after:5.0 (fun () ->
          Alcotest.(check (float 1e-9)) "upgrade granted when other S released" 2.0 !upgraded))

let test_immediate_deadlock () =
  with_sim (fun sim ->
      let lm = Lockmgr.create ~detection:Lockmgr.Immediate sim in
      let victim = ref 0 in
      let a_done = ref false in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          Sim.delay sim 1.0;
          (try
             Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "b";
             a_done := true
           with Lockmgr.Deadlock_victim ->
             victim := 1;
             Lockmgr.release_all lm 1));
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "b";
          Sim.delay sim 2.0;
          (try Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "a"
           with Lockmgr.Deadlock_victim -> victim := 2);
          Lockmgr.release_all lm 2);
      Sim.schedule sim ~after:10.0 (fun () ->
          (* T1 blocks on b at t=1 (no cycle yet); T2's request at t=2 would
             close the cycle, so T2 is the victim. *)
          Alcotest.(check int) "requester is victim" 2 !victim;
          Alcotest.(check bool) "T1 eventually granted" true !a_done;
          Alcotest.(check int) "one deadlock counted" 1 (Lockmgr.deadlocks lm)))

let test_periodic_deadlock () =
  with_sim (fun sim ->
      let lm = Lockmgr.create ~detection:(Lockmgr.Periodic 0.5) sim in
      let victim_time = ref (-1.0) in
      let survivor_done = ref false in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          Sim.delay sim 0.1;
          (try
             Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "b";
             survivor_done := true;
             Lockmgr.release_all lm 1
           with Lockmgr.Deadlock_victim -> Alcotest.fail "older txn should survive"));
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "b";
          Sim.delay sim 0.1;
          (try Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "a"
           with Lockmgr.Deadlock_victim ->
             victim_time := Sim.now sim;
             Lockmgr.release_all lm 2));
      Sim.schedule sim ~after:10.0 (fun () ->
          (* Both blocked by t=0.1; the detector starts at the first block
             and fires one interval later (t=0.6), killing the youngest
             (owner 2). *)
          Alcotest.(check (float 1e-6)) "victim killed at detector tick" 0.6 !victim_time;
          Alcotest.(check bool) "survivor completed" true !survivor_done))

let test_cancel_wait () =
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      let cancelled = ref false in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          Sim.delay sim 5.0;
          Lockmgr.release_all lm 1);
      Sim.spawn sim (fun () ->
          Sim.delay sim 0.5;
          try Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "a"
          with Not_found -> cancelled := true);
      Sim.spawn sim (fun () ->
          Sim.delay sim 1.0;
          Alcotest.(check bool) "waiting" true (Lockmgr.is_waiting lm 2);
          Alcotest.(check bool) "cancelled" true (Lockmgr.cancel_wait lm 2 Not_found));
      Sim.schedule sim ~after:10.0 (fun () ->
          Alcotest.(check bool) "exception delivered" true !cancelled;
          Alcotest.(check bool) "no longer waiting" false (Lockmgr.is_waiting lm 2)))

let test_release_keeps_siread () =
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.Siread "a";
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "b";
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.S "c";
          Lockmgr.release_all ~keep_siread:true lm 1;
          Alcotest.(check (list (pair int string)))
            "SIREAD survives"
            [ (1, "SIREAD") ]
            (List.map (fun (o, m) -> (o, Lockmgr.mode_to_string m)) (Lockmgr.holders lm "a"));
          Alcotest.(check (list (pair int string))) "X gone" [] (List.map (fun (o, m) -> (o, Lockmgr.mode_to_string m)) (Lockmgr.holders lm "b"));
          Lockmgr.release_all lm 1;
          Alcotest.(check int) "empty table" 0 (Lockmgr.lock_table_size lm)))

let test_release_wakes_waiter () =
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      let got = ref (-1.0) in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          Sim.delay sim 1.0;
          Lockmgr.release_one lm ~owner:1 ~mode:Lockmgr.X "a");
      Sim.spawn sim (fun () ->
          Sim.delay sim 0.1;
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.S "a";
          got := Sim.now sim);
      Sim.schedule sim ~after:5.0 (fun () ->
          Alcotest.(check (float 1e-9)) "woken on release_one" 1.0 !got))

let test_three_way_deadlock_periodic () =
  with_sim (fun sim ->
      let lm = Lockmgr.create ~detection:(Lockmgr.Periodic 0.5) sim in
      let victims = ref [] in
      let completions = ref 0 in
      for i = 1 to 3 do
        Sim.spawn sim (fun () ->
            let mine = string_of_int i in
            let next = string_of_int ((i mod 3) + 1) in
            Lockmgr.acquire lm ~owner:i ~mode:Lockmgr.X mine;
            Sim.delay sim 0.1;
            (try
               Lockmgr.acquire lm ~owner:i ~mode:Lockmgr.X next;
               incr completions
             with Lockmgr.Deadlock_victim -> victims := i :: !victims);
            Lockmgr.release_all lm i)
      done;
      Sim.schedule sim ~after:20.0 (fun () ->
          Alcotest.(check int) "one victim breaks the 3-cycle" 1 (List.length !victims);
          Alcotest.(check int) "others complete" 2 !completions))


let test_reentrant_bypasses_queue () =
  (* Regression: an owner re-requesting a mode it already effectively holds
     must not queue behind strangers waiting for it (self-deadlock). *)
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      let reacquired = ref (-1.0) in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          Sim.delay sim 1.0;
          (* Owner 2 is queued for X by now; our re-request must succeed
             immediately, not deadlock. *)
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          reacquired := Sim.now sim;
          Lockmgr.release_all lm 1);
      Sim.spawn sim (fun () ->
          Sim.delay sim 0.5;
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "a";
          Lockmgr.release_all lm 2);
      Sim.schedule sim ~after:10.0 (fun () ->
          Alcotest.(check (float 1e-9)) "instant re-grant" 1.0 !reacquired;
          Alcotest.(check int) "no deadlock" 0 (Lockmgr.deadlocks lm)))

let test_conversion_goes_to_queue_front () =
  (* An S holder converting to X waits only for the other S holder, then is
     served before the stranger X waiter who arrived earlier. *)
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      let order = ref [] in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.S "a";
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.S "a";
          ());
      (* Stranger X waiter arrives first. *)
      Sim.spawn sim (fun () ->
          Sim.delay sim 0.1;
          Lockmgr.acquire lm ~owner:3 ~mode:Lockmgr.X "a";
          order := 3 :: !order;
          Lockmgr.release_all lm 3);
      (* Holder 1 requests conversion later. *)
      Sim.spawn sim (fun () ->
          Sim.delay sim 0.2;
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.X "a";
          order := 1 :: !order;
          Lockmgr.release_all lm 1);
      (* Holder 2 releases, unblocking the conversion. *)
      Sim.spawn sim (fun () ->
          Sim.delay sim 1.0;
          Lockmgr.release_all lm 2);
      Sim.schedule sim ~after:10.0 (fun () ->
          Alcotest.(check (list int)) "conversion first" [ 1; 3 ] (List.rev !order)))

let test_siread_retained_vs_new_x () =
  (* A suspended owner's SIREAD must be visible to later X acquirers. *)
  with_sim (fun sim ->
      let lm = Lockmgr.create sim in
      Sim.spawn sim (fun () ->
          Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.Siread "a";
          Lockmgr.release_all ~keep_siread:true lm 1;
          Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "a";
          let holders = List.sort compare (Lockmgr.holders lm "a") in
          Alcotest.(check (list (pair int string)))
            "both visible"
            [ (1, "SIREAD"); (2, "X") ]
            (List.map (fun (o, m) -> (o, Lockmgr.mode_to_string m)) holders)))

let suite =
  [
    ("conflict matrix", `Quick, test_conflict_matrix);
    ("shared locks coexist", `Quick, test_shared_locks_coexist);
    ("X blocks until release", `Quick, test_x_blocks_until_release);
    ("SIREAD never blocks", `Quick, test_siread_never_blocks);
    ("X granted over SIREAD", `Quick, test_x_granted_over_siread);
    ("FIFO no starvation", `Quick, test_fifo_no_starvation);
    ("reentrant acquisition", `Quick, test_reentrant);
    ("upgrade waits for other S", `Quick, test_upgrade_waits_for_other_s);
    ("immediate deadlock detection", `Quick, test_immediate_deadlock);
    ("periodic deadlock detection", `Quick, test_periodic_deadlock);
    ("cancel wait", `Quick, test_cancel_wait);
    ("release keeps SIREAD", `Quick, test_release_keeps_siread);
    ("release_one wakes waiter", `Quick, test_release_wakes_waiter);
    ("three-way deadlock", `Quick, test_three_way_deadlock_periodic);
    ("reentrant bypasses queue", `Quick, test_reentrant_bypasses_queue);
    ("conversion at queue front", `Quick, test_conversion_goes_to_queue_front);
    ("retained SIREAD visible to X", `Quick, test_siread_retained_vs_new_x);
  ]

let () = Alcotest.run "lockmgr" [ ("lockmgr", suite) ]
