(* Tests for the LRU buffer cache and its engine integration. *)

let mk ?(capacity = 3) ?(latency = 0.01) () =
  let sim = Sim.create () in
  let disk = Resource.create sim ~name:"disk" ~capacity:4 in
  let c = Bufcache.create sim ~capacity ~disk ~read_latency:latency ~write_latency:latency () in
  (sim, disk, c)

let run_proc sim f =
  Sim.spawn sim f;
  Sim.run ~until:1e6 sim

let test_miss_then_hit () =
  let sim, _, c = mk () in
  run_proc sim (fun () ->
      Bufcache.touch c ~table:"t" ~page:1;
      Alcotest.(check (float 1e-9)) "miss paid disk latency" 0.01 (Sim.now sim);
      Bufcache.touch c ~table:"t" ~page:1;
      Alcotest.(check (float 1e-9)) "hit is free" 0.01 (Sim.now sim));
  Alcotest.(check int) "one miss" 1 (Bufcache.misses c);
  Alcotest.(check int) "one hit" 1 (Bufcache.hits c);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Bufcache.hit_rate c)

let test_lru_eviction_order () =
  let sim, _, c = mk ~capacity:3 () in
  run_proc sim (fun () ->
      List.iter (fun p -> Bufcache.touch c ~table:"t" ~page:p) [ 1; 2; 3 ];
      (* touch 1 again: LRU order now 1,3,2 *)
      Bufcache.touch c ~table:"t" ~page:1;
      Alcotest.(check (list (pair string int)))
        "lru order"
        [ ("t", 1); ("t", 3); ("t", 2) ]
        (Bufcache.lru_order c);
      (* inserting 4 evicts 2 (the LRU) *)
      Bufcache.touch c ~table:"t" ~page:4;
      Alcotest.(check (list (pair string int)))
        "evicted the LRU page"
        [ ("t", 4); ("t", 1); ("t", 3) ]
        (Bufcache.lru_order c));
  Alcotest.(check int) "one eviction" 1 (Bufcache.evictions c)

let test_capacity_bound () =
  let sim, _, c = mk ~capacity:3 () in
  run_proc sim (fun () ->
      for p = 1 to 50 do
        Bufcache.touch c ~table:"t" ~page:p
      done);
  Alcotest.(check int) "never exceeds capacity" 3 (Bufcache.size c);
  Alcotest.(check int) "all cold misses" 50 (Bufcache.misses c)

let test_dirty_writeback () =
  let sim, _, c = mk ~capacity:1 () in
  run_proc sim (fun () ->
      Bufcache.touch ~dirty:true c ~table:"t" ~page:1;
      Alcotest.(check (float 1e-9)) "read miss" 0.01 (Sim.now sim);
      (* evicting the dirty page pays a write then a read *)
      Bufcache.touch c ~table:"t" ~page:2;
      Alcotest.(check (float 1e-9)) "writeback + read" 0.03 (Sim.now sim));
  Alcotest.(check int) "one writeback" 1 (Bufcache.dirty_writebacks c)

let test_clean_eviction_free_write () =
  let sim, _, c = mk ~capacity:1 () in
  run_proc sim (fun () ->
      Bufcache.touch c ~table:"t" ~page:1;
      Bufcache.touch c ~table:"t" ~page:2;
      Alcotest.(check (float 1e-9)) "two reads only" 0.02 (Sim.now sim));
  Alcotest.(check int) "no writebacks" 0 (Bufcache.dirty_writebacks c)

let test_prewarm () =
  let sim, _, c = mk ~capacity:2 () in
  Bufcache.prewarm c [ ("t", 1); ("t", 2); ("t", 3) ];
  Alcotest.(check int) "prewarm respects capacity" 2 (Bufcache.size c);
  run_proc sim (fun () ->
      Bufcache.touch c ~table:"t" ~page:3;
      Alcotest.(check (float 1e-9)) "prewarmed page is a hit" 0.0 (Sim.now sim))

let test_tables_disjoint () =
  let sim, _, c = mk ~capacity:4 () in
  run_proc sim (fun () ->
      Bufcache.touch c ~table:"a" ~page:1;
      Bufcache.touch c ~table:"b" ~page:1);
  Alcotest.(check int) "same page id in two tables = two entries" 2 (Bufcache.size c)

(* Engine integration: a small buffer pool makes a large-table workload
   I/O-bound while a fitting one stays fast; both stay transactionally
   correct. *)
let engine_with_pool pool =
  let open Core in
  let config =
    { (Config.test ()) with Config.buffer_pool = pool; record_history = false; btree_fanout = 4 }
  in
  let sim = Sim.create () in
  let db = Db.create ~config sim in
  Sibench.setup db ~items:200 ();
  let committed = ref 0 in
  Sim.spawn sim (fun () ->
      let st = Random.State.make [| 11 |] in
      for _ = 1 to 300 do
        match Db.run db Types.Serializable (fun t -> Sibench.update ~items:200 st t) with
        | Ok () -> incr committed
        | Error _ -> ()
      done);
  Sim.run ~until:1e6 sim;
  (Sim.now sim, !committed, Db.cache db)

let test_engine_small_pool_is_io_bound () =
  let t_small, n_small, cache_small = engine_with_pool (Some 4) in
  let t_big, n_big, cache_big = engine_with_pool (Some 10_000) in
  Alcotest.(check int) "all commits (small pool)" 300 n_small;
  Alcotest.(check int) "all commits (big pool)" 300 n_big;
  Alcotest.(check bool) "small pool is much slower" true (t_small > 4.0 *. t_big);
  (match (cache_small, cache_big) with
  | Some cs, Some cb ->
      Alcotest.(check bool) "small pool misses a lot" true (Bufcache.hit_rate cs < 0.5);
      Alcotest.(check bool) "big pool mostly hits" true (Bufcache.hit_rate cb > 0.9)
  | _ -> Alcotest.fail "caches not created")

let test_engine_pool_updates_never_lost () =
  (* The correctness probe from the sibench suite, now with cache pressure. *)
  let open Core in
  let config = { (Config.test ()) with Config.buffer_pool = Some 8; btree_fanout = 4 } in
  let sim = Sim.create () in
  let db = Db.create ~config sim in
  Sibench.setup db ~items:100 ();
  let committed = ref 0 in
  for client = 1 to 4 do
    Sim.spawn sim (fun () ->
        let st = Random.State.make [| 7; client |] in
        for _ = 1 to 15 do
          (match Db.run db Types.Serializable (fun t -> Sibench.update ~items:100 st t) with
          | Ok () -> incr committed
          | Error _ -> ());
          Sim.delay sim (Random.State.float st 0.001)
        done)
  done;
  Sim.run ~until:1e6 sim;
  Alcotest.(check int) "total = initial + commits"
    (Sibench.initial_total ~items:100 + !committed)
    (Sibench.total db);
  Alcotest.(check bool) "history serializable" true (Mvsg.is_serializable (Db.history db))

let suite =
  [
    ("miss then hit", `Quick, test_miss_then_hit);
    ("lru eviction order", `Quick, test_lru_eviction_order);
    ("capacity bound", `Quick, test_capacity_bound);
    ("dirty writeback", `Quick, test_dirty_writeback);
    ("clean eviction has no write", `Quick, test_clean_eviction_free_write);
    ("prewarm", `Quick, test_prewarm);
    ("tables disjoint", `Quick, test_tables_disjoint);
    ("engine: small pool is I/O bound", `Quick, test_engine_small_pool_is_io_bound);
    ("engine: updates never lost under cache pressure", `Quick, test_engine_pool_updates_never_lost);
  ]

let () = Alcotest.run "bufcache" [ ("bufcache", suite) ]
