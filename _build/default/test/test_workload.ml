(* Tests for the workload driver: mix selection, measurement windows,
   retries, think time, and multi-seed aggregation. *)

open Core

let mk_db ?(items = 20) () =
 fun sim ->
  let db = Db.create ~config:{ (Config.test ()) with Config.record_history = false } sim in
  Sibench.setup db ~items ();
  db

let test_pick_respects_weights () =
  let st = Random.State.make [| 3 |] in
  let mix =
    [
      Driver.program ~weight:9.0 "heavy" (fun _ _ -> ());
      Driver.program ~weight:1.0 "light" (fun _ _ -> ());
    ]
  in
  let counts = Hashtbl.create 2 in
  for _ = 1 to 10_000 do
    let p = Driver.pick mix st in
    Hashtbl.replace counts p.Driver.p_name
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts p.Driver.p_name))
  done;
  let heavy = Hashtbl.find counts "heavy" in
  Alcotest.(check bool) "about 90%" true (heavy > 8_700 && heavy < 9_300)

let test_deterministic_runs () =
  let cfg =
    { Driver.default_config with Driver.mpl = 4; warmup = 0.05; duration = 0.2 }
  in
  let r1 = Driver.run_once ~make_db:(mk_db ()) ~mix:(Sibench.mix ~items:20 ()) cfg in
  let r2 = Driver.run_once ~make_db:(mk_db ()) ~mix:(Sibench.mix ~items:20 ()) cfg in
  Alcotest.(check int) "same commits" r1.Driver.commits r2.Driver.commits;
  Alcotest.(check (float 1e-9)) "same throughput" r1.Driver.throughput r2.Driver.throughput

let test_seed_changes_result () =
  let cfg =
    { Driver.default_config with Driver.mpl = 4; warmup = 0.05; duration = 0.2 }
  in
  let r1 = Driver.run_once ~make_db:(mk_db ()) ~mix:(Sibench.mix ~items:20 ()) cfg in
  let r2 =
    Driver.run_once ~make_db:(mk_db ()) ~mix:(Sibench.mix ~items:20 ()) { cfg with Driver.seed = 99 }
  in
  Alcotest.(check bool) "different seeds, different runs" true
    (r1.Driver.commits <> r2.Driver.commits)

let test_per_program_counts_sum () =
  let cfg =
    { Driver.default_config with Driver.mpl = 3; warmup = 0.05; duration = 0.2 }
  in
  let r = Driver.run_once ~make_db:(mk_db ()) ~mix:(Sibench.mix ~items:20 ()) cfg in
  let sum = List.fold_left (fun a (_, n) -> a + n) 0 r.Driver.per_program in
  Alcotest.(check int) "per-program counts sum to commits" r.Driver.commits sum;
  Alcotest.(check bool) "both programs ran" true (List.length r.Driver.per_program = 2)

let test_think_time_lowers_throughput () =
  let cfg =
    { Driver.default_config with Driver.mpl = 2; warmup = 0.05; duration = 0.3 }
  in
  let busy = Driver.run_once ~make_db:(mk_db ()) ~mix:(Sibench.mix ~items:20 ()) cfg in
  let idle =
    Driver.run_once ~make_db:(mk_db ())
      ~mix:(Sibench.mix ~items:20 ())
      { cfg with Driver.think_time = 0.01 }
  in
  Alcotest.(check bool) "think time reduces throughput" true
    (idle.Driver.throughput < busy.Driver.throughput /. 2.0)

let test_run_seeds_aggregates () =
  let cfg =
    { Driver.default_config with Driver.mpl = 3; warmup = 0.05; duration = 0.2 }
  in
  let s =
    Driver.run_seeds ~make_db:(mk_db ()) ~mix:(Sibench.mix ~items:20 ()) ~seeds:[ 1; 2; 3 ] cfg
  in
  Alcotest.(check bool) "positive throughput" true (s.Driver.s_throughput > 0.0);
  Alcotest.(check bool) "ci computed" true (s.Driver.s_ci >= 0.0);
  Alcotest.(check int) "mpl recorded" 3 s.Driver.s_mpl

let test_user_abort_counts_as_completed () =
  (* Programs that roll back by design (e.g. SmallBank overdrafts) count as
     completed work, not errors (§5.1.1 semantics). *)
  let mix =
    [
      Driver.program "roller" (fun _ _ -> raise (Types.Abort Types.User_abort));
    ]
  in
  let cfg =
    { Driver.default_config with Driver.mpl = 1; warmup = 0.0; duration = 0.05 }
  in
  let r = Driver.run_once ~make_db:(mk_db ()) ~mix cfg in
  Alcotest.(check bool) "rollback-only program still progresses" true (r.Driver.commits > 10);
  Alcotest.(check int) "no error aborts" 0
    (r.Driver.deadlocks + r.Driver.conflicts + r.Driver.unsafe)

let test_stats_t95_monotone () =
  Alcotest.(check bool) "t95 decreases with n" true
    (Stats.t95 2 > Stats.t95 3 && Stats.t95 3 > Stats.t95 5 && Stats.t95 5 > Stats.t95 30);
  Alcotest.(check (float 1e-9)) "single sample has no interval" 0.0 (snd (Stats.ci95 [ 42.0 ]))

let test_stats_t95_table () =
  (* Pin the tabulated two-sided 95% critical values (df = n-1). *)
  let pins = [ (2, 12.706); (5, 2.776); (10, 2.262); (15, 2.145); (20, 2.093); (25, 2.064); (30, 2.045) ] in
  List.iter
    (fun (n, expect) ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "t95 %d" n) expect (Stats.t95 n))
    pins;
  (* Degenerate sample sizes and the large-n fallback. *)
  Alcotest.(check (float 1e-9)) "t95 0" 0.0 (Stats.t95 0);
  Alcotest.(check (float 1e-9)) "t95 1" 0.0 (Stats.t95 1);
  Alcotest.(check (float 1e-9)) "t95 31 falls back" 2.0 (Stats.t95 31);
  Alcotest.(check (float 1e-9)) "t95 1000 falls back" 2.0 (Stats.t95 1000);
  (* The whole table is strictly decreasing from n = 2 through 30 and the
     fallback does not jump above the last tabulated value. *)
  for n = 2 to 29 do
    Alcotest.(check bool) (Printf.sprintf "t95 %d > t95 %d" n (n + 1)) true
      (Stats.t95 n > Stats.t95 (n + 1))
  done;
  Alcotest.(check bool) "fallback below t95 30" true (Stats.t95 31 < Stats.t95 30)

let test_stats_stddev_ci95_edges () =
  (* stddev: degenerate and known-answer cases. *)
  Alcotest.(check (float 1e-9)) "stddev []" 0.0 (Stats.stddev []);
  Alcotest.(check (float 1e-9)) "stddev [x]" 0.0 (Stats.stddev [ 7.0 ]);
  Alcotest.(check (float 1e-9)) "stddev constant" 0.0 (Stats.stddev [ 3.0; 3.0; 3.0; 3.0 ]);
  (* Sample (n-1) stddev of {1,3} is sqrt(2); of {2,4,4,4,5,5,7,9} is
     sqrt(32/7). *)
  Alcotest.(check (float 1e-9)) "stddev two-sample" (sqrt 2.0) (Stats.stddev [ 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev known eight-sample" (sqrt (32.0 /. 7.0))
    (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]);
  (* ci95: empty and singleton collapse to (mean, 0). *)
  Alcotest.(check (float 1e-9)) "ci95 [] mean" 0.0 (fst (Stats.ci95 []));
  Alcotest.(check (float 1e-9)) "ci95 [] halfwidth" 0.0 (snd (Stats.ci95 []));
  Alcotest.(check (float 1e-9)) "ci95 [x] mean" 42.0 (fst (Stats.ci95 [ 42.0 ]));
  (* Two samples: halfwidth = t95(2) * stddev / sqrt 2 = 12.706 * sqrt 2 / sqrt 2. *)
  let m, hw = Stats.ci95 [ 1.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "ci95 two-sample mean" 2.0 m;
  Alcotest.(check (float 1e-9)) "ci95 two-sample halfwidth" 12.706 hw;
  (* Constant samples have a zero-width interval at the mean. *)
  let m, hw = Stats.ci95 [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "ci95 constant mean" 5.0 m;
  Alcotest.(check (float 1e-9)) "ci95 constant halfwidth" 0.0 hw

let suite =
  [
    ("pick respects weights", `Quick, test_pick_respects_weights);
    ("deterministic runs", `Quick, test_deterministic_runs);
    ("seed changes result", `Quick, test_seed_changes_result);
    ("per-program counts sum", `Quick, test_per_program_counts_sum);
    ("think time lowers throughput", `Quick, test_think_time_lowers_throughput);
    ("run_seeds aggregates", `Quick, test_run_seeds_aggregates);
    ("user abort counts as completed", `Quick, test_user_abort_counts_as_completed);
    ("stats t95 monotone", `Quick, test_stats_t95_monotone);
    ("stats t95 table pins", `Quick, test_stats_t95_table);
    ("stats stddev/ci95 edges", `Quick, test_stats_stddev_ci95_edges);
  ]

let () = Alcotest.run "workload" [ ("workload", suite) ]
