(* Tests for the multiversion storage layer. *)

let mk () = Mvstore.create ~fanout:4 "t"

let install_value t key ~commit_ts ~creator v =
  let chain, _ = Mvstore.ensure_chain t key in
  Mvstore.install chain ~value:v ~commit_ts ~creator

let test_visibility () =
  let t = mk () in
  install_value t "a" ~commit_ts:5 ~creator:1 (Some "v5");
  install_value t "a" ~commit_ts:10 ~creator:2 (Some "v10");
  Alcotest.(check (option string)) "before any" None (Mvstore.read t "a" ~snapshot:4);
  Alcotest.(check (option string)) "at first" (Some "v5") (Mvstore.read t "a" ~snapshot:5);
  Alcotest.(check (option string)) "between" (Some "v5") (Mvstore.read t "a" ~snapshot:9);
  Alcotest.(check (option string)) "at second" (Some "v10") (Mvstore.read t "a" ~snapshot:10);
  Alcotest.(check (option string)) "after" (Some "v10") (Mvstore.read t "a" ~snapshot:99);
  Alcotest.(check (option string)) "latest" (Some "v10") (Mvstore.read_latest t "a")

let test_tombstone () =
  let t = mk () in
  install_value t "a" ~commit_ts:5 ~creator:1 (Some "v");
  install_value t "a" ~commit_ts:10 ~creator:2 None;
  Alcotest.(check (option string)) "visible before delete" (Some "v") (Mvstore.read t "a" ~snapshot:7);
  Alcotest.(check (option string)) "deleted after" None (Mvstore.read t "a" ~snapshot:12);
  Alcotest.(check (option string)) "latest deleted" None (Mvstore.read_latest t "a");
  (* The index entry must remain for conflict detection until GC. *)
  Alcotest.(check int) "index entry kept" 1 (Mvstore.key_count t)

let test_newer_versions () =
  let t = mk () in
  install_value t "a" ~commit_ts:5 ~creator:1 (Some "v5");
  install_value t "a" ~commit_ts:10 ~creator:2 (Some "v10");
  install_value t "a" ~commit_ts:15 ~creator:3 (Some "v15");
  let chain = Option.get (Mvstore.find_chain t "a") in
  let newer = Mvstore.newer_versions chain ~than:7 in
  Alcotest.(check (list int)) "newer than 7" [ 15; 10 ]
    (List.map (fun (v : Mvstore.version) -> v.Mvstore.commit_ts) newer);
  Alcotest.(check (list int)) "creators" [ 3; 2 ]
    (List.map (fun (v : Mvstore.version) -> v.Mvstore.creator) newer);
  Alcotest.(check bool) "has_newer 7" true (Mvstore.has_newer chain ~than:7);
  Alcotest.(check bool) "has_newer 15" false (Mvstore.has_newer chain ~than:15)

let test_install_order_enforced () =
  let t = mk () in
  install_value t "a" ~commit_ts:10 ~creator:1 (Some "x");
  Alcotest.check_raises "decreasing ts rejected"
    (Invalid_argument "Mvstore.install: commit timestamps must increase along a chain")
    (fun () -> install_value t "a" ~commit_ts:10 ~creator:2 (Some "y"))

let test_successor_and_scan () =
  let t = mk () in
  List.iter (fun k -> install_value t k ~commit_ts:1 ~creator:1 (Some k)) [ "a"; "c"; "e" ];
  Alcotest.(check (option string)) "successor" (Some "c") (Mvstore.successor t "a");
  Alcotest.(check (option string)) "successor mid-gap" (Some "c") (Mvstore.successor t "b");
  Alcotest.(check (option string)) "min" (Some "a") (Mvstore.min_key t);
  let seen = ref [] in
  let _ = Mvstore.scan_chains t ~lo:"b" ~hi:"e" (fun k _ -> seen := k :: !seen) in
  Alcotest.(check (list string)) "scan range" [ "c"; "e" ] (List.rev !seen)

let test_gc_drops_old_versions () =
  let t = mk () in
  install_value t "a" ~commit_ts:1 ~creator:1 (Some "v1");
  install_value t "a" ~commit_ts:2 ~creator:2 (Some "v2");
  install_value t "a" ~commit_ts:3 ~creator:3 (Some "v3");
  Alcotest.(check int) "three versions" 3 (Mvstore.version_count t);
  let removed = Mvstore.gc t ~min_snapshot:2 in
  Alcotest.(check int) "no keys removed" 0 removed;
  (* v1 is unreadable by any snapshot >= 2; v2 is still the visible version
     at snapshot 2. *)
  Alcotest.(check int) "two versions left" 2 (Mvstore.version_count t);
  Alcotest.(check (option string)) "snapshot 2 still reads v2" (Some "v2")
    (Mvstore.read t "a" ~snapshot:2)

let test_gc_reclaims_dead_tombstones () =
  let t = mk () in
  install_value t "a" ~commit_ts:1 ~creator:1 (Some "v");
  install_value t "a" ~commit_ts:2 ~creator:2 None;
  install_value t "b" ~commit_ts:1 ~creator:1 (Some "w");
  let removed = Mvstore.gc t ~min_snapshot:5 in
  Alcotest.(check int) "tombstoned key reclaimed" 1 removed;
  Alcotest.(check int) "live key kept" 1 (Mvstore.key_count t);
  Alcotest.(check (option string)) "live key readable" (Some "w") (Mvstore.read t "b" ~snapshot:5)

let test_gc_keeps_recent_tombstones () =
  let t = mk () in
  install_value t "a" ~commit_ts:1 ~creator:1 (Some "v");
  install_value t "a" ~commit_ts:10 ~creator:2 None;
  (* A transaction with snapshot 5 can still read "v", so nothing is
     reclaimable. *)
  let removed = Mvstore.gc t ~min_snapshot:5 in
  Alcotest.(check int) "nothing removed" 0 removed;
  Alcotest.(check (option string)) "old snapshot reads through tombstone" (Some "v")
    (Mvstore.read t "a" ~snapshot:5)

let test_empty_chain_reclaimed () =
  let t = mk () in
  let _, _ = Mvstore.ensure_chain t "a" in
  Alcotest.(check int) "entry exists" 1 (Mvstore.key_count t);
  let removed = Mvstore.gc t ~min_snapshot:1 in
  Alcotest.(check int) "empty chain removed" 1 removed

(* Property: visibility is the newest version at or below the snapshot. *)
let prop_visibility commits =
  let t = mk () in
  let sorted = List.sort_uniq compare commits in
  List.iter (fun ts -> install_value t "k" ~commit_ts:ts ~creator:ts (Some (string_of_int ts))) sorted;
  List.for_all
    (fun snap ->
      let expected =
        List.fold_left (fun acc ts -> if ts <= snap then Some ts else acc) None sorted
      in
      Mvstore.read t "k" ~snapshot:snap = Option.map string_of_int expected)
    (List.init 30 (fun i -> i))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"visibility = newest at-or-below snapshot"
         QCheck.(list_of_size Gen.(int_bound 20) (int_range 1 25))
         prop_visibility);
  ]

let suite =
  [
    ("visibility by snapshot", `Quick, test_visibility);
    ("tombstones", `Quick, test_tombstone);
    ("newer versions", `Quick, test_newer_versions);
    ("install order enforced", `Quick, test_install_order_enforced);
    ("successor and scan", `Quick, test_successor_and_scan);
    ("gc drops old versions", `Quick, test_gc_drops_old_versions);
    ("gc reclaims dead tombstones", `Quick, test_gc_reclaims_dead_tombstones);
    ("gc keeps recent tombstones", `Quick, test_gc_keeps_recent_tombstones);
    ("gc reclaims empty chains", `Quick, test_empty_chain_reclaimed);
  ]

let () = Alcotest.run "mvcc" [ ("mvcc", suite); ("mvcc-props", qcheck_tests) ]
