(* Shared helpers for the engine/benchmark test suites: build a simulated
   database, seed tables, and script precisely interleaved transactions. *)

open Core

let default_config () = Config.test ()

type env = { sim : Sim.t; db : Db.t }

let make_env ?config ?(tables = []) ?(rows = []) () =
  let config = match config with Some c -> c | None -> default_config () in
  let sim = Sim.create () in
  let db = Db.create ~config sim in
  List.iter (fun t -> ignore (Db.create_table db t)) tables;
  List.iter (fun (t, kvs) -> Db.load db t kvs) rows;
  { sim; db }

(* Spawn [f] as a simulator process and run the simulation to completion.
   Exceptions escaping processes propagate. *)
let run_procs env procs =
  List.iter (fun f -> Sim.spawn env.sim f) procs;
  Sim.run ~until:1.0e6 env.sim

(* Script a transaction: start at [at] simulated seconds, perform [steps] in
   order with [gap] seconds between them, then commit (unless a step
   aborted). The per-transaction outcome is stored in the returned ref. *)
type outcome = Pending | Committed | Aborted of Types.abort_reason

let outcome_to_string = function
  | Pending -> "pending"
  | Committed -> "committed"
  | Aborted r -> "aborted:" ^ Types.abort_reason_to_string r

let outcome_testable = Alcotest.testable (fun fmt o -> Fmt.string fmt (outcome_to_string o)) ( = )

let script env ~at ?(gap = 0.01) ~isolation steps =
  let result = ref Pending in
  let proc () =
    Sim.delay env.sim at;
    let txn = Db.begin_txn env.db isolation in
    match
      List.iter
        (fun step ->
          step txn;
          Sim.delay env.sim gap)
        steps;
      Txn.commit txn
    with
    | () -> result := Committed
    | exception Types.Abort r -> result := Aborted r
  in
  Sim.spawn env.sim proc;
  result

(* One-shot committed transaction executed inline (for setup/verification
   from within a process). *)
let atomically env isolation body =
  match Db.run env.db isolation body with
  | Ok v -> v
  | Error r -> Alcotest.failf "setup transaction aborted: %s" (Types.abort_reason_to_string r)

(* Read a key's committed state from a fresh snapshot transaction. *)
let peek env table key =
  let out = ref None in
  Sim.spawn env.sim (fun () -> out := atomically env Types.Snapshot (fun t -> Txn.read t table key));
  Sim.run ~until:1.0e6 env.sim;
  !out

let peek_int env table key = Option.map int_of_string (peek env table key)

let int_rows n f = List.init n (fun i -> f i)

let check_outcome msg expected r = Alcotest.check outcome_testable msg expected !r
