(* SmallBank in anger: run the benchmark mix at all three concurrency
   control algorithms on the same simulated machine and print a miniature
   version of the paper's Fig 6.1, including the abort breakdown.

   Run with: dune exec examples/smallbank_demo.exe *)

open Core

let () =
  Printf.printf "%-6s %12s %12s %12s %12s\n" "level" "commits/s" "deadlock%" "fcw%" "unsafe%";
  List.iter
    (fun (label, isolation) ->
      let make_db sim =
        let db =
          Db.create ~config:{ (Config.bdb ()) with Config.record_history = false } sim
        in
        Smallbank.setup db ~customers:20_000 ();
        db
      in
      let r =
        Driver.run_once ~make_db
          ~mix:(Smallbank.mix ~customers:20_000 ())
          {
            Driver.default_config with
            Driver.isolation;
            mpl = 20;
            warmup = 0.25;
            duration = 1.5;
          }
      in
      let pct n = 100.0 *. float_of_int n /. float_of_int (max 1 r.Driver.commits) in
      Printf.printf "%-6s %12.0f %12.2f %12.2f %12.2f\n" label r.Driver.throughput
        (pct r.Driver.deadlocks) (pct r.Driver.conflicts) (pct r.Driver.unsafe))
    [ ("SI", Types.Snapshot); ("SSI", Types.Serializable); ("S2PL", Types.S2pl) ];
  print_endline
    "\nSI leads but permits write skew; SSI guarantees serializability at a few\n\
     percent cost; S2PL pays blocking and deadlock-detection stalls (cf. Fig 6.1)."
