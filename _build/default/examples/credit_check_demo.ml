(* Example 5 of the paper: the TPC-C++ Credit Check anomaly.

   A customer's unpaid total starts at $9.00 against a $10.00 limit. The
   customer makes a payment and then places a new order; a background Credit
   Check runs concurrently. Under SI the credit check can compute its total
   on a snapshot that misses the payment, committing "bad credit" that the
   customer never observes in order — a non-serializable execution. Under
   Serializable SI one of the transactions aborts instead.

   Run with: dune exec examples/credit_check_demo.exe *)

open Core

let cust = "c1"

let run isolation =
  let sim = Sim.create () in
  let db = Db.create ~config:(Config.test ()) sim in
  ignore (Db.create_table db "customer");
  ignore (Db.create_table db "credit");
  Db.load db "customer" [ (cust, "900") ] (* unpaid total, cents *);
  Db.load db "credit" [ (cust, "GC") ];
  Db.clear_history db;
  let limit = 1000 in
  let log = ref [] in
  let say fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  let outcome = ref "?" in
  (* Credit check: long-running; reads the balance early, commits late. *)
  Sim.spawn sim (fun () ->
      match
        Db.run db isolation (fun t ->
            let unpaid = int_of_string (Txn.read_exn t "customer" cust) in
            Sim.delay sim 0.05 (* batch job crunching *);
            let status = if unpaid > limit then "BC" else "GC" in
            Txn.write t "credit" cust status;
            say "credit check computed unpaid=%d -> %s" unpaid status)
      with
      | Ok () -> outcome := "committed"
      | Error r -> outcome := Types.abort_reason_to_string r);
  (* Customer: pays $5.00, then places a $2.00 order, seeing their status. *)
  Sim.spawn sim (fun () ->
      Sim.delay sim 0.01;
      ignore
        (Db.run_retry db isolation (fun t ->
             let unpaid = int_of_string (Txn.read_for_update_exn t "customer" cust) in
             Txn.write t "customer" cust (string_of_int (unpaid - 500));
             say "payment of $5.00 accepted"));
      Sim.delay sim 0.01;
      ignore
        (Db.run_retry db isolation (fun t ->
             let status = Txn.read_exn t "credit" cust in
             let unpaid = int_of_string (Txn.read_for_update_exn t "customer" cust) in
             Txn.write t "customer" cust (string_of_int (unpaid + 200));
             say "new order placed; terminal shows credit status %s" status)));
  Sim.run sim;
  let final_status = Mvstore.read_latest (Db.table_exn db "credit") cust in
  (List.rev !log, !outcome, final_status, Mvsg.is_serializable (Db.history db))

let print_run (log, cc_outcome, status, serializable) =
  List.iter (fun l -> Printf.printf "  %s\n" l) log;
  Printf.printf "  credit check: %s; final stored status: %s\n" cc_outcome
    (Option.value ~default:"?" status);
  Printf.printf "  history serializable? %b\n" serializable;
  serializable

let () =
  print_endline "Under plain Snapshot Isolation:";
  let ok_si = print_run (run Types.Snapshot) in
  print_endline
    "  -> the check used the pre-payment unpaid total, yet the customer placed\n\
    \     an order with a GOOD status afterwards: no serial order explains this.\n";
  print_endline "Under Serializable Snapshot Isolation:";
  let ok_ssi = print_run (run Types.Serializable) in
  assert (not ok_si);
  assert ok_ssi
