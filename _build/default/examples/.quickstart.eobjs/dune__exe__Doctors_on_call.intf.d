examples/doctors_on_call.mli:
