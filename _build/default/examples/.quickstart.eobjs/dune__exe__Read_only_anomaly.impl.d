examples/read_only_anomaly.ml: Array Config Core Db List Mvsg Printf Sim Txn Types
