examples/read_only_anomaly.mli:
