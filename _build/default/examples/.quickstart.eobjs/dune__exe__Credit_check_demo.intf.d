examples/credit_check_demo.mli:
