examples/quickstart.mli:
