examples/doctors_on_call.ml: Config Core Db List Printf Sim Txn Types
