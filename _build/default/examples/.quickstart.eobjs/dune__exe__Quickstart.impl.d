examples/quickstart.ml: Config Core Db Internal List Printf Sim Txn Types
