examples/smallbank_demo.ml: Config Core Db Driver List Printf Smallbank Types
