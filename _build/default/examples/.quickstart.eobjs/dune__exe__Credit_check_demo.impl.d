examples/credit_check_demo.ml: Config Core Db List Mvsg Mvstore Option Printf Sim Txn Types
