(* Quickstart: the public API in one file.

   The engine runs inside a deterministic discrete-event simulator, so all
   database work happens in simulator processes ([Sim.spawn]) and the whole
   program finishes by draining the event loop ([Sim.run]).

   Run with: dune exec examples/quickstart.exe *)

open Core

let () =
  (* 1. A simulated machine and a database on top of it. [Config.test ()]
     gives row-level locking, precise SSI and no log-flush waits; see
     Config.bdb / Config.innodb for the paper's two hardware profiles. *)
  let sim = Sim.create () in
  let db = Db.create ~config:(Config.test ()) sim in
  ignore (Db.create_table db "accounts");

  (* 2. Bulk-load initial data (outside any transaction). *)
  Db.load db "accounts" [ ("alice", "100"); ("bob", "100") ];

  Sim.spawn sim (fun () ->
      (* 3. Transactions: Db.run wraps begin/commit and returns a result.
         Isolation is chosen per transaction: Serializable is the paper's
         Serializable Snapshot Isolation. *)
      (match
         Db.run db Types.Serializable (fun txn ->
             let alice = int_of_string (Txn.read_exn txn "accounts" "alice") in
             Txn.write txn "accounts" "alice" (string_of_int (alice - 10));
             let bob = int_of_string (Txn.read_exn txn "accounts" "bob") in
             Txn.write txn "accounts" "bob" (string_of_int (bob + 10)))
       with
      | Ok () -> print_endline "transfer committed"
      | Error reason ->
          Printf.printf "transfer aborted: %s\n" (Types.abort_reason_to_string reason));

      (* 4. Reads, scans (predicate reads with next-key gap locking),
         inserts and deletes. *)
      (match
         Db.run db Types.Serializable (fun txn ->
             Txn.insert txn "accounts" "carol" "500";
             Txn.scan txn "accounts")
       with
      | Ok rows ->
          print_endline "accounts after insert:";
          List.iter (fun (k, v) -> Printf.printf "  %-6s %s\n" k v) rows
      | Error _ -> assert false);

      (* 5. Aborted transactions leave no trace. *)
      (match
         Db.run db Types.Serializable (fun txn ->
             Txn.write txn "accounts" "alice" "0";
             raise (Types.Abort Types.User_abort))
       with
      | Ok () -> assert false
      | Error Types.User_abort -> print_endline "rollback discarded the write"
      | Error _ -> assert false);

      (* 6. run_retry retries deadlock / conflict / unsafe aborts — the
         normal way to execute a transaction under contention. *)
      (match
         Db.run_retry db Types.Serializable (fun txn ->
             ignore (Txn.read_exn txn "accounts" "alice"))
       with
      | Ok () -> print_endline "alice still has her money"
      | Error _ -> assert false));

  Sim.run sim;
  Printf.printf "done at simulated time %.6fs; %d commits, %d unsafe aborts\n"
    (Sim.now sim) (Db.stats db).Internal.commits (Db.stats db).Internal.aborts_unsafe
