(* Example 3 of the paper (after Fekete, O'Neil & O'Neil 2004): a read-only
   transaction observes a database state that could never exist in any
   serial execution of the two updaters, even though the updaters alone are
   serializable.

   Tpivot: r(y) w(x)   — reads the old y, so it must precede Tout serially
   Tout:   w(y) w(z)
   Tin:    r(x) r(z)   — sees Tout's z but not Tpivot's x: impossible order

   Under SI all three commit; the recorded history has an MVSG cycle. Under
   Serializable SI the pivot is aborted. We use the multiversion
   serialization graph checker to prove it either way.

   Run with: dune exec examples/read_only_anomaly.exe *)

open Core

let run isolation =
  let sim = Sim.create () in
  let db = Db.create ~config:(Config.test ()) sim in
  ignore (Db.create_table db "t");
  Db.load db "t" [ ("x", "0"); ("y", "0"); ("z", "0") ];
  Db.clear_history db;
  let outcome = Array.make 3 "?" in
  let script i ~at steps =
    Sim.spawn sim (fun () ->
        Sim.delay sim at;
        let txn = Db.begin_txn db isolation in
        match
          List.iter
            (fun step ->
              step txn;
              Sim.delay sim 0.01)
            steps;
          Txn.commit txn
        with
        | () -> outcome.(i) <- "committed"
        | exception Types.Abort r -> outcome.(i) <- Types.abort_reason_to_string r)
  in
  (* Tpivot: reads y early, writes x late, commits last. *)
  script 0 ~at:0.00
    [
      (fun t -> ignore (Txn.read_exn t "t" "y"));
      (fun _t -> Sim.delay sim 0.08);
      (fun t -> Txn.write t "t" "x" "pivot");
    ];
  (* Tout: writes y and z, commits first. *)
  script 1 ~at:0.02
    [ (fun t -> Txn.write t "t" "y" "out"); (fun t -> Txn.write t "t" "z" "out") ];
  (* Tin: reads x (old) and z (new), commits in between. *)
  script 2 ~at:0.06
    [ (fun t -> ignore (Txn.read_exn t "t" "x")); (fun t -> ignore (Txn.read_exn t "t" "z")) ];
  Sim.run sim;
  let serializable = Mvsg.is_serializable (Db.history db) in
  (outcome, serializable)

let () =
  let names = [| "Tpivot"; "Tout  "; "Tin   " |] in
  print_endline "Under plain Snapshot Isolation:";
  let o, serializable = run Types.Snapshot in
  Array.iteri (fun i s -> Printf.printf "  %s -> %s\n" names.(i) s) o;
  Printf.printf "  committed history serializable? %b  <- the read-only anomaly\n\n"
    serializable;
  assert (not serializable);
  print_endline "Under Serializable Snapshot Isolation:";
  let o, serializable = run Types.Serializable in
  Array.iteri (fun i s -> Printf.printf "  %s -> %s\n" names.(i) s) o;
  Printf.printf "  committed history serializable? %b\n" serializable;
  assert serializable
