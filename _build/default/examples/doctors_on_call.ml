(* Example 1 of the paper: the on-call doctors write skew.

   Invariant: at least one doctor must be on duty per shift. Each
   transaction moves one doctor to reserve *after checking* that another
   remains on duty — a check that plain snapshot isolation evaluates against
   a stale snapshot, so two concurrent transactions can take both doctors
   off duty. Serializable SI detects the rw-dependency cycle and aborts one.

   Run with: dune exec examples/doctors_on_call.exe *)

open Core

let run_shift isolation =
  let sim = Sim.create () in
  let db = Db.create ~config:(Config.test ()) sim in
  ignore (Db.create_table db "duties");
  Db.load db "duties" [ ("dr_house", "on-duty"); ("dr_wilson", "on-duty") ];

  (* UPDATE Duties SET Status = 'reserve' WHERE DoctorId = :d AND Status =
     'on duty'; SELECT COUNT(...) WHERE Status = 'on duty'; IF 0 ROLLBACK *)
  let go_to_reserve doctor () =
    match
      Db.run db isolation (fun txn ->
          Txn.write txn "duties" doctor "reserve";
          let on_duty =
            List.filter (fun (_, status) -> status = "on-duty") (Txn.scan txn "duties")
          in
          if on_duty = [] then raise (Types.Abort Types.User_abort))
    with
    | Ok () -> Printf.printf "  %-9s: %s goes to reserve\n" "COMMIT" doctor
    | Error r ->
        Printf.printf "  %-9s: %s stays (%s)\n" "ROLLBACK" doctor
          (Types.abort_reason_to_string r)
  in
  (* Interleave the two requests so both read before either commits. *)
  Sim.spawn sim (fun () -> go_to_reserve "dr_house" ());
  Sim.spawn sim (fun () ->
      Sim.delay sim 1e-6;
      go_to_reserve "dr_wilson" ());
  Sim.run sim;

  let on_duty = ref 0 in
  Sim.spawn sim (fun () ->
      match
        Db.run db Types.Snapshot (fun txn ->
            List.filter (fun (_, s) -> s = "on-duty") (Txn.scan txn "duties"))
      with
      | Ok rows -> on_duty := List.length rows
      | Error _ -> ());
  Sim.run sim;
  !on_duty

let () =
  print_endline "Shift change under plain Snapshot Isolation:";
  let si = run_shift Types.Snapshot in
  Printf.printf "  doctors on duty afterwards: %d %s\n\n" si
    (if si = 0 then "<- INVARIANT VIOLATED (write skew)" else "");
  print_endline "Shift change under Serializable Snapshot Isolation:";
  let ssi = run_shift Types.Serializable in
  Printf.printf "  doctors on duty afterwards: %d %s\n" ssi
    (if ssi >= 1 then "<- invariant preserved" else "<- BUG");
  assert (si = 0);
  assert (ssi >= 1)
