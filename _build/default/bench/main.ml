(* Benchmark entry point.

   Regenerates every table/figure of the paper's evaluation (Chapter 6) plus
   the DESIGN.md ablations via the Experiments library, then runs Bechamel
   micro-benchmarks of the engine primitives. Pass figure ids to restrict
   (e.g. `dune exec bench/main.exe -- fig6.1 fig6.8`), `--quick` for a fast
   smoke pass, `--micro-only` / `--figures-only` to skip a half,
   `--metrics` to add engine-metrics tables to each figure, and
   `--trace FILE` to capture a Chrome trace of one SmallBank run. *)

(* Three seeds give meaningful 95% confidence intervals; MPL up to 50 as in
   the paper's Berkeley DB charts. *)
let bench_budget = Experiments.full_budget

(* {1 Bechamel micro-benchmarks: one per core primitive} *)

open Bechamel
open Toolkit

let btree_insert_test =
  Test.make ~name:"btree/insert-1k"
    (Staged.stage (fun () ->
         let t = Btree.create ~fanout:32 () in
         for i = 0 to 999 do
           ignore (Btree.insert t (Printf.sprintf "k%06d" i) i)
         done))

let btree_find_test =
  let t = Btree.create ~fanout:32 () in
  for i = 0 to 9999 do
    ignore (Btree.insert t (Printf.sprintf "k%06d" i) i)
  done;
  let i = ref 0 in
  Test.make ~name:"btree/find"
    (Staged.stage (fun () ->
         i := (!i + 7919) mod 10000;
         ignore (Btree.find t (Printf.sprintf "k%06d" !i))))

let btree_scan_test =
  let t = Btree.create ~fanout:32 () in
  for i = 0 to 9999 do
    ignore (Btree.insert t (Printf.sprintf "k%06d" i) i)
  done;
  Test.make ~name:"btree/scan-1k"
    (Staged.stage (fun () ->
         let n = ref 0 in
         Btree.iter_range t ~lo:"k000000" ~hi:"k000999" (fun _ _ -> incr n)))

let mvstore_visible_test =
  let table = Mvstore.create "bench" in
  let chain, _ = Mvstore.ensure_chain table "k" in
  for ts = 1 to 10 do
    Mvstore.install chain ~value:(Some (string_of_int ts)) ~commit_ts:ts ~creator:ts
  done;
  Test.make ~name:"mvstore/visible"
    (Staged.stage (fun () -> ignore (Mvstore.visible chain ~snapshot:5)))

let lockmgr_test =
  let sim = Sim.create () in
  let lm = Lockmgr.create sim in
  Test.make ~name:"lockmgr/siread+x"
    (Staged.stage (fun () ->
         Lockmgr.acquire lm ~owner:1 ~mode:Lockmgr.Siread "r";
         Lockmgr.acquire lm ~owner:2 ~mode:Lockmgr.X "r";
         Lockmgr.release_all lm 1;
         Lockmgr.release_all lm 2))

(* Whole-transaction micro-benchmarks: 20 SmallBank transactions on a fresh
   simulated engine per run (cost includes the simulator itself). *)
let txn_test isolation name =
  Test.make ~name
    (Staged.stage (fun () ->
         let sim = Sim.create () in
         let config = { (Core.Config.test ()) with Core.Config.record_history = false } in
         let db = Core.Db.create ~config sim in
         Smallbank.setup db ~customers:100 ();
         Sim.spawn sim (fun () ->
             let st = Random.State.make [| 42 |] in
             let mix = Smallbank.mix ~customers:100 () in
             for _ = 1 to 20 do
               let prog = Driver.pick mix st in
               ignore (Core.Db.run_retry db isolation (prog.Driver.p_body st))
             done);
         Sim.run ~until:1e6 sim))

let micro_tests =
  Test.make_grouped ~name:"ssi"
    [
      btree_insert_test;
      btree_find_test;
      btree_scan_test;
      mvstore_visible_test;
      lockmgr_test;
      txn_test Core.Types.Snapshot "engine/20-txns-si";
      txn_test Core.Types.Serializable "engine/20-txns-ssi";
      txn_test Core.Types.S2pl "engine/20-txns-s2pl";
    ]

let run_micro () =
  print_endline "\n=== Bechamel micro-benchmarks (ns per run) ===";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] micro_tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  List.iter
    (fun name ->
      let est = Hashtbl.find results name in
      match Analyze.OLS.estimates est with
      | Some (ns :: _) -> Printf.printf "%-28s %12.0f ns/run\n" name ns
      | _ -> Printf.printf "%-28s %12s\n" name "n/a")
    (List.sort compare names)

(* {1 Main} *)

(* One traced SmallBank run (SSI, MPL 10): the Chrome-trace companion to the
   figure tables. Tracing never changes benchmark numbers. *)
let run_traced file =
  let obs = Obs.create ~trace:true () in
  let make_db sim =
    let db = Core.Db.create ~config:(Core.Config.bdb ()) sim in
    Smallbank.setup db ~customers:20_000 ();
    db
  in
  let cfg =
    {
      Driver.default_config with
      Driver.isolation = Core.Types.Serializable;
      mpl = 10;
      warmup = 0.1;
      duration = 0.5;
    }
  in
  let r = Driver.run_once ~obs ~make_db ~mix:(Smallbank.mix ~customers:20_000 ()) cfg in
  Obs.write_trace_file file obs;
  Printf.printf "trace: SmallBank SSI mpl=10, %d commits; %d events written to %s\n%!"
    r.Driver.commits (Obs.event_count obs) file

let rec trace_file = function
  | "--trace" :: file :: _ -> Some file
  | _ :: rest -> trace_file rest
  | [] -> None

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let micro_only = List.mem "--micro-only" args in
  let figures_only = List.mem "--figures-only" args in
  let with_metrics = List.mem "--metrics" args in
  let trace = trace_file args in
  let args =
    (* drop `--trace FILE` so FILE is not mistaken for a figure id *)
    let rec strip = function
      | "--trace" :: _ :: rest -> strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  let requested = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let budget =
    let b = if quick then Experiments.quick_budget else bench_budget in
    { b with Experiments.with_metrics }
  in
  (match trace with Some file -> run_traced file | None -> ());
  let ids = if requested <> [] then requested else List.map fst Experiments.all_figures in
  if not micro_only then begin
    Printf.printf
      "Reproducing the evaluation of 'Serializable Isolation for Snapshot Databases'\n\
       (Cahill, Roehm, Fekete); throughput is commits per simulated second; compare\n\
       shapes, not absolute numbers. Budget: %d seed(s), %.2fs windows, MPL in {%s}.\n"
      (List.length budget.Experiments.seeds)
      budget.Experiments.duration
      (String.concat ", " (List.map string_of_int budget.Experiments.mpls));
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun id ->
        let t = Unix.gettimeofday () in
        Experiments.run_and_print ~budget Fmt.stdout id;
        Printf.printf "[%s took %.1fs]\n%!" id (Unix.gettimeofday () -. t))
      ids;
    Printf.printf "\nAll experiments done in %.1fs.\n%!" (Unix.gettimeofday () -. t0)
  end;
  if (not figures_only) && requested = [] then run_micro ()
