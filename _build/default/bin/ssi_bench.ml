(* Command-line front-end for the reproduction:

   - [list]         enumerate the experiments (paper figures + ablations)
   - [run IDS..]    run experiments and print their tables
   - [sdg NAME]     static dependency graph analysis (§2.6/§2.8)
   - [interleave]   exhaustive interleaving sweeps (§4.7)

   Examples:
     ssi_bench run fig6.1 fig6.8 --seeds 3 --duration 1.0
     ssi_bench sdg smallbank
     ssi_bench interleave --spec write-skew --isolation si *)

open Cmdliner

let list_cmd =
  let run () =
    print_endline "Available experiments (see DESIGN.md for the per-figure index):";
    List.iter
      (fun (id, title) -> Printf.printf "  %-18s %s\n" id title)
      Experiments.titles
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments") Term.(const run $ const ())

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (see list)")

let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Fast smoke budget")

let seeds_arg =
  Arg.(value & opt int 2 & info [ "seeds" ] ~doc:"Number of random seeds per point")

let duration_arg =
  Arg.(value & opt float 0.5 & info [ "duration" ] ~doc:"Measured simulated seconds per run")

let mpl_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 5; 10; 20 ]
    & info [ "mpl" ] ~doc:"Comma-separated multiprogramming levels")

let run_cmd =
  let run ids quick seeds duration mpls =
    let budget =
      if quick then Experiments.quick_budget
      else
        {
          Experiments.seeds = List.init seeds (fun i -> i + 1);
          duration;
          warmup = duration /. 4.0;
          mpls;
        }
    in
    let ids = if ids = [] then List.map fst Experiments.all_figures else ids in
    List.iter (Experiments.run_and_print ~budget Fmt.stdout) ids
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print throughput/abort tables")
    Term.(const run $ ids_arg $ quick_arg $ seeds_arg $ duration_arg $ mpl_arg)

let sdg_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 string "smallbank"
      & info [] ~docv:"NAME"
          ~doc:
            "Graph: smallbank | smallbank-materialize-wt | smallbank-promote-wt | \
             smallbank-materialize-bw | smallbank-promote-bw | tpcc | tpccpp")
  in
  let run name =
    let g =
      match name with
      | "smallbank" -> Some (Catalog.smallbank ())
      | "smallbank-materialize-wt" -> Some (Catalog.smallbank_materialize_wt ())
      | "smallbank-promote-wt" -> Some (Catalog.smallbank_promote_wt ())
      | "smallbank-materialize-bw" -> Some (Catalog.smallbank_materialize_bw ())
      | "smallbank-promote-bw" -> Some (Catalog.smallbank_promote_bw ())
      | "tpcc" -> Some (Catalog.tpcc ())
      | "tpccpp" -> Some (Catalog.tpccpp ())
      | _ -> None
    in
    match g with
    | None ->
        prerr_endline ("unknown graph: " ^ name);
        exit 1
    | Some g ->
        Fmt.pr "Static dependency graph '%s' (rw! = vulnerable anti-dependency):@.%a@." name
          Sdg.pp g;
        let ds = Sdg.dangerous_structures g in
        if ds = [] then
          Fmt.pr "No dangerous structure: every SI execution is serializable (Theorem 3).@."
        else begin
          Fmt.pr "DANGEROUS: pivots %a@." Fmt.(list ~sep:comma string) (Sdg.pivots g);
          List.iter
            (fun d ->
              Fmt.pr "  %s -rw!-> %s -rw!-> %s@." d.Sdg.d_in d.Sdg.d_pivot d.Sdg.d_out)
            ds
        end
  in
  Cmd.v
    (Cmd.info "sdg" ~doc:"Analyse a static dependency graph for dangerous structures")
    Term.(const run $ name_arg)

let interleave_cmd =
  let spec_arg =
    Arg.(
      value
      & opt string "write-skew"
      & info [ "spec" ] ~doc:"Transaction set: write-skew | read-only-anomaly | paper-4.7")
  in
  let iso_arg =
    Arg.(value & opt string "si" & info [ "isolation" ] ~doc:"si | ssi | s2pl | rc")
  in
  let run spec iso =
    let spec_txns =
      match spec with
      | "write-skew" -> Interleave.write_skew_spec
      | "read-only-anomaly" -> Interleave.read_only_anomaly_spec
      | "paper-4.7" -> Interleave.paper_spec
      | _ ->
          prerr_endline ("unknown spec: " ^ spec);
          exit 1
    in
    let isolation =
      match iso with
      | "si" -> Core.Types.Snapshot
      | "ssi" -> Core.Types.Serializable
      | "s2pl" -> Core.Types.S2pl
      | "rc" -> Core.Types.Read_committed
      | _ ->
          prerr_endline ("unknown isolation: " ^ iso);
          exit 1
    in
    let s = Interleave.sweep ~isolation spec_txns in
    Printf.printf
      "spec=%s isolation=%s: %d interleavings\n\
      \  all-committed:    %d\n\
      \  non-serializable: %d\n\
      \  unsafe aborts:    %d\n\
      \  other aborts:     %d\n"
      spec iso s.Interleave.total s.Interleave.all_committed s.Interleave.non_serializable
      s.Interleave.unsafe_aborts s.Interleave.other_aborts
  in
  Cmd.v
    (Cmd.info "interleave"
       ~doc:"Exhaustively execute all interleavings of a transaction set (§4.7)")
    Term.(const run $ spec_arg $ iso_arg)

let () =
  let info =
    Cmd.info "ssi_bench" ~version:"1.0"
      ~doc:"Reproduction toolkit for 'Serializable Isolation for Snapshot Databases'"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; sdg_cmd; interleave_cmd ]))
