(* Abort provenance: every engine-initiated abort carries a certificate.

   This example drives the classic two-transaction write skew under SSI
   with a provenance sink attached, then prints the certificate the engine
   emitted for the unsafe abort: the pivot structure T_in -rw-> T_pivot
   -rw-> T_out with the key and detection source behind each edge, the
   victim-policy decision, a JSON export, and a Graphviz DOT snapshot of
   the dependency graph at abort time.

   Run with: dune exec examples/abort_provenance.exe *)

open Core

let () =
  let sim = Sim.create () in
  let db = Db.create ~config:(Config.test ()) sim in
  let obs = Obs.create ~provenance:true () in
  Db.set_obs db obs;
  ignore (Db.create_table db "t");
  Db.load db "t" [ ("x", "0"); ("y", "0") ];

  (* Both transactions read {x, y} on overlapping snapshots, then write
     disjoint keys: each misses the other's write, completing an rw cycle.
     The interleaving is pinned with simulated delays so the second writer
     is the one that trips the dangerous-structure check. *)
  let txn reads write delay_s =
    Sim.spawn sim (fun () ->
        Sim.delay sim delay_s;
        match
          Db.run db Types.Serializable (fun t ->
              List.iter (fun k -> ignore (Txn.read_exn t "t" k)) reads;
              Sim.delay sim 1e-4;
              Txn.write t "t" write "1")
        with
        | Ok () -> Printf.printf "  T(%s): committed\n" write
        | Error r -> Printf.printf "  T(%s): aborted (%s)\n" write (Types.abort_reason_to_string r))
  in
  print_endline "Write skew under SSI, provenance on:";
  txn [ "x"; "y" ] "x" 0.0;
  txn [ "x"; "y" ] "y" 1e-5;
  Sim.run sim;

  (* Exactly one unsafe abort, exactly one certificate. *)
  let certs = Obs.certs obs in
  assert (List.length certs = 1);
  let c = List.hd certs in
  assert (c.Obs.c_reason = "unsafe");
  (match c.Obs.c_cert with
  | Obs.Ssi_pivot { sp_victim; sp_pivot; sp_policy; _ } ->
      Printf.printf "\ncertificate: shape %S, policy %s, victim T%d (pivot T%d)\n"
        (Obs.cert_shape c) sp_policy sp_victim sp_pivot
  | _ -> assert false);

  print_endline "\nJSON export (self-contained, replayable):";
  print_endline (Obs.cert_to_json c);

  print_endline "\nGraphviz snapshot of the dependency graph at abort time:";
  print_string c.Obs.c_dot;
  (* The emitted DOT must satisfy the in-repo structural validator (the
     same check the CI smoke rule applies to `ssi_bench report --dot`). *)
  match Obs.dot_validate c.Obs.c_dot with
  | Ok () -> print_endline "\ndot_validate: OK"
  | Error e -> failwith ("invalid DOT emitted: " ^ e)
